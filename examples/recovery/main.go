// Recovery walks crash-stop failure and deterministic restart: the
// Fig. 8 particle-I/O variants run their checkpoint-aware bodies under
// a fixed crash campaign, roll back to their last committed step, and
// replay the lost iterations. The campaign is data — crash instants,
// victims and restart costs are explicit events — so every recovery,
// including the ULFM-style revoke-and-rebuild dance underneath, replays
// bit-for-bit across process representations and repeated runs.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/ipic3d"
	"repro/internal/faults"
	"repro/internal/sim"
)

const (
	procs = 64
	steps = 24
)

// config is the experiment's recovery workload: longer run, wider
// checkpoint records than the plain Fig. 8 save path.
func config() ipic3d.Config {
	c := ipic3d.DefaultConfig(procs)
	c.Steps = steps
	c.ParticleBytes = 256
	return c
}

func run(v ipic3d.IOVariant, k int, inj *faults.Injection) ipic3d.RecoveryResult {
	c := config()
	c.Faults = inj
	res, err := ipic3d.RunRecovery(c, v, k)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	variants := []ipic3d.IOVariant{ipic3d.IOCollective, ipic3d.IOShared, ipic3d.IODecoupled}
	intervals := []int{3, 6, 12}

	fmt.Println("two crashes (ranks 7 and 23 at 1/3 and 2/3 of the clean run), restart cost 250ms:")
	for _, v := range variants {
		fmt.Printf("\n%s:\n  %-4s %12s %12s %10s %8s %9s\n",
			v, "k", "clean", "crashed", "overhead", "wasted", "restarts")
		for _, k := range intervals {
			clean := run(v, k, nil)
			inj := &faults.Injection{Crash: []sim.CrashEvent{
				{At: clean.Time / 3, Target: 7, Restart: 250 * sim.Millisecond},
				{At: 2 * clean.Time / 3, Target: 23, Restart: 250 * sim.Millisecond},
			}}
			res := run(v, k, inj)
			fmt.Printf("  %-4d %12v %12v %9.2fs %7.1f%% %9d\n",
				k, clean.Time, res.Time, res.Time.Seconds()-clean.Time.Seconds(),
				100*res.WastedFraction(), res.Restarts)
		}
	}

	// The decoupled variant commits at two levels: every step absorbed
	// into I/O-group memory, every k steps flushed to the bank. Which
	// level a crash falls back to depends on the victim's fault domain.
	fmt.Println("\ndecoupled two-tier commit (k=6): same crash instant, different victim:")
	clean := run(ipic3d.IODecoupled, 6, nil)
	for _, victim := range []struct {
		rank int
		role string
	}{{7, "compute rank: replay from the memory commit (about a step)"},
		{procs - 1, "I/O rank: memory tier lost, replay from the bank checkpoint"}} {
		inj := &faults.Injection{Crash: []sim.CrashEvent{
			{At: clean.Time / 2, Target: victim.rank, Restart: 250 * sim.Millisecond},
		}}
		res := run(ipic3d.IODecoupled, 6, inj)
		fmt.Printf("  victim %-2d  overhead %6.2fs  wasted %5.1f%%  — %s\n",
			victim.rank, res.Time.Seconds()-clean.Time.Seconds(),
			100*res.WastedFraction(), victim.role)
	}
}
