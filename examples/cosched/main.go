// Cosched demonstrates multi-job co-scheduling: three decoupled iPIC3D
// particle-I/O jobs (the paper's Fig. 8 "Decoupling" variant) run as
// independent worlds on one simulation engine, their I/O groups all
// contending for the same striped file-system bank. The example runs the
// same job mix under each inter-job arbitration policy — FCFS, fair
// share, priority (light jobs outrank the hog 4:1), and the
// work-conserving variants fair-wc and priority-wc — and prints how
// each job's completion time moves relative to running alone on an idle
// bank, plus the hog's tail: how long it runs on after the last light
// job finishes. Under the static policies the tail crawls at the hog's
// capped share even though the bank is otherwise idle; under the
// work-conserving policies the lights' unused entitlement flows back
// and the tail proceeds at the full bank rate. See README.md for the
// walkthrough.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/ipic3d"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	perJobProcs = 16
	stripes     = 1 // a narrow bank: the hog's backlog is everyone's problem
)

// jobConfig builds job i's application config: job 0 saves its full
// particle population every step (the I/O hog), the others down-sample.
func jobConfig(i int) ipic3d.Config {
	c := ipic3d.DefaultConfig(perJobProcs)
	c.Seed = int64(100 + i)
	c.MoveRate = 4e6 // fast mover: the bank, not compute, is the bottleneck
	c.BufferSteps = 1
	c.SaveFraction = 0.25
	if i == 0 {
		c.SaveFraction = 1.0
	}
	return c
}

// job wraps jobConfig(i) as a cluster job.
func job(i int) cluster.Job {
	c := jobConfig(i)
	name := fmt.Sprintf("j%d", i)
	if i == 0 {
		name = "hog"
	}
	weight := 4.0
	if i == 0 {
		weight = 1.0
	}
	return cluster.Job{
		Name:   name,
		Weight: weight,
		Start: func(base mpi.Config) (*mpi.World, error) {
			j, err := ipic3d.StartIO(c, ipic3d.IODecoupled, base)
			if err != nil {
				return nil, err
			}
			return j.World(), nil
		},
	}
}

func main() {
	cores := flag.Int("cores", 0, "run each cluster in conservative parallel mode with this many workers (0: classic single-engine mode; results are identical for any value >= 1)")
	flag.Parse()

	const jobs = 3

	// Baseline: each job alone on an identical (idle) bank. The baselines
	// share the shared runs' -cores setting so both sides of every
	// slowdown ratio come from the same trajectory family.
	alone := make([]sim.Time, jobs)
	for i := range alone {
		res, err := cluster.Run(cluster.Config{
			Jobs:    []cluster.Job{job(i)},
			Stripes: stripes,
			Seed:    1,
			Cores:   *cores,
		})
		if err != nil {
			log.Fatal(err)
		}
		alone[i] = res.JobTimes[0]
	}

	for _, policy := range []sim.BankPolicy{sim.BankFCFS, sim.BankFair, sim.BankWeighted, sim.BankFairWC, sim.BankWeightedWC} {
		cjobs := make([]cluster.Job, jobs)
		for i := range cjobs {
			cjobs[i] = job(i)
		}
		res, err := cluster.Run(cluster.Config{
			Jobs:    cjobs,
			Policy:  policy,
			Stripes: stripes,
			Seed:    1,
			Cores:   *cores,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The hog's tail: how long it keeps writing after the last light
		// job is gone — the interval where work conservation matters.
		lastLight := sim.Max(res.JobTimes[1], res.JobTimes[2])
		tail := res.JobTimes[0] - lastLight
		if tail < 0 {
			tail = 0
		}
		fmt.Printf("%-11s  makespan %v, hog tail %v\n", policy, res.Makespan, tail)
		for i, jt := range res.JobTimes {
			fmt.Printf("  job %d: %v alone, %v co-scheduled (slowdown %.2fx, %v of stripe time, %v I/O-active)\n",
				i, alone[i], jt, float64(jt)/float64(alone[i]), res.JobBusy[i], res.JobDemand[i])
		}
	}
}
