// Wordcount runs the paper's MapReduce case study end to end with real
// data at laptop scale: mappers tokenize a synthetic Zipf corpus and
// stream real (word, count) histograms to reducers sharded by hash;
// reducers merge on the fly and a master aggregates the global histogram.
// The result is verified against a serial count of the same corpus, then
// the decoupled and reference implementations are compared at simulated
// scale (a miniature Fig. 5).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps/mapreduce"
	"repro/internal/mpi"
	"repro/internal/stream"
	"repro/internal/wordcount"
	"repro/internal/workload"
)

const (
	procs    = 12
	reducers = 3
	mappers  = procs - reducers
	files    = 24
	wordsPer = 4000
)

func main() {
	corpus := workload.DefaultCorpus(files, 1<<20, 7)

	// Serial reference answer.
	serial := make(map[string]int64)
	for f := 0; f < files; f++ {
		for _, v := range corpus.Words(f, wordsPer) {
			serial[workload.WordString(v)]++
		}
	}

	// Distributed decoupled run with real payloads.
	w := mpi.NewWorld(mpi.Config{Procs: procs, Seed: 1})
	global := make(map[string]int64)
	end, err := w.Run(func(r *mpi.Rank) {
		world := r.World()
		role := stream.Producer
		if r.ID() >= mappers {
			role = stream.Consumer
		}
		ch := stream.CreateChannel(r, world, role)
		st := ch.Attach(r, stream.Options{ElementBytes: 2048})
		if role == stream.Producer {
			for f := r.ID(); f < files; f += mappers {
				words := make([]string, 0, wordsPer)
				for _, v := range corpus.Words(f, wordsPer) {
					words = append(words, workload.WordString(v))
				}
				hist := wordcount.Map(words)
				// Shard the chunk's histogram over the reducers.
				shards := make([]map[string]int64, reducers)
				for word, n := range hist {
					s := wordcount.Shard(word, reducers)
					if shards[s] == nil {
						shards[s] = make(map[string]int64)
					}
					shards[s][word] = n
				}
				for s, shard := range shards {
					if shard != nil {
						st.IsendTo(r, stream.Element{Data: shard}, s)
					}
				}
			}
			st.Terminate(r)
		} else {
			local := make(map[string]int64)
			st.Operate(r, func(rr *mpi.Rank, e stream.Element, src int) {
				local = wordcount.Combine(local, e.Data.(map[string]int64))
			})
			// Second level: reducers feed the shared global histogram
			// through a gather at reducer 0.
			cons := ch.ConsumerComm()
			parts := cons.Gatherv(r, 0, mpi.Part{Bytes: int64(16 * len(local)), Data: local})
			if parts != nil {
				for _, part := range parts {
					wordcount.Combine(global, part.Data.(map[string]int64))
				}
			}
		}
		ch.Free(r)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the serial answer.
	if len(global) != len(serial) {
		log.Fatalf("distinct words: distributed %d vs serial %d", len(global), len(serial))
	}
	for word, n := range serial {
		if global[word] != n {
			log.Fatalf("count mismatch for %q: %d vs %d", word, global[word], n)
		}
	}
	top := wordcount.Top(global, 5)
	var bits []string
	for _, p := range top {
		bits = append(bits, fmt.Sprintf("%s:%d", p.Word, p.Count))
	}
	fmt.Printf("verified %d distinct words against the serial count (virtual time %v)\n", len(global), end)
	fmt.Printf("top words: %s\n", strings.Join(bits, " "))

	// Miniature Fig. 5: reference vs decoupled at simulated scale.
	fmt.Println("\nminiature Fig. 5 (weak scaling, simulated):")
	for _, p := range []int{32, 128} {
		cfg := mapreduce.DefaultConfig(p)
		ref, err := mapreduce.RunReference(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := mapreduce.RunDecoupled(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  procs=%4d reference=%7.2fs decoupled=%7.2fs speedup=%.2fx\n",
			p, ref.Time.Seconds(), dec.Time.Seconds(), float64(ref.Time)/float64(dec.Time))
	}
}
