// Package repro's benchmark harness regenerates every figure of the
// paper's evaluation (one benchmark per figure) plus the ablations from
// DESIGN.md. Each benchmark runs the corresponding experiment sweep and
// logs the regenerated rows; -v shows them.
//
// The sweeps default to 256 processes so `go test -bench=.` stays
// affordable; set REPRO_MAX_PROCS (e.g. 8192 for the paper's full scale)
// to extend them, and REPRO_RUNS to average over more seeds. Sweep points
// run concurrently across REPRO_WORKERS goroutines (default: one per
// CPU) with bit-identical output for any worker count, and under a
// relaxed GC target tunable with REPRO_GOGC. REPRO_FIBERS=1 runs rank
// bodies as goroutine-free fibers (bit-identical rows, faster dispatch).
// The full-scale sweep is also available through cmd/decouplebench.
package repro

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchOptions derives experiment options from the environment.
func benchOptions() experiments.Options {
	opts := experiments.Options{MaxProcs: 256, Runs: 1}
	if v, err := strconv.Atoi(os.Getenv("REPRO_MAX_PROCS")); err == nil && v >= 32 {
		opts.MaxProcs = v
	}
	if v, err := strconv.Atoi(os.Getenv("REPRO_RUNS")); err == nil && v > 0 {
		opts.Runs = v
	}
	return opts
}

// runFigure executes one registered experiment per benchmark iteration and
// logs its rows.
func runFigure(b *testing.B, name string) {
	b.Helper()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Registry[name](opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			if err := experiments.FormatTable(&buf, rows); err != nil {
				b.Fatal(err)
			}
			b.Logf("regenerated %s (max procs %d):\n%s", name, opts.MaxProcs, buf.String())
		}
	}
}

// BenchmarkFig5MapReduce regenerates Fig. 5: MapReduce weak scaling,
// reference vs decoupling at alpha = 12.5%, 6.25% and 3.125%.
func BenchmarkFig5MapReduce(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6CG regenerates Fig. 6: CG solver weak scaling with
// blocking, non-blocking and decoupled halo exchange.
func BenchmarkFig6CG(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7ParticleComm regenerates Fig. 7: iPIC3D particle
// communication, reference forwarding vs decoupled streaming.
func BenchmarkFig7ParticleComm(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8ParticleIO regenerates Fig. 8: iPIC3D particle I/O,
// write_all and write_shared references vs the decoupled I/O group.
func BenchmarkFig8ParticleIO(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig2Trace regenerates Fig. 2: the seven-process iPIC3D traces
// (reference vs decoupled particle communication).
func BenchmarkFig2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.Fig2(&buf, 100); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", buf.String())
		}
	}
}

// BenchmarkFig3Schedules regenerates Fig. 3: the conceptual schedules of
// the conventional, non-blocking and decoupled models.
func BenchmarkFig3Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.Fig3(&buf, 100); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", buf.String())
		}
	}
}

// BenchmarkAblationGranularity sweeps the stream element size S (Eq. 4's
// pipelining-versus-overhead trade-off, DESIGN.md design choice 1).
func BenchmarkAblationGranularity(b *testing.B) { runFigure(b, "ablation-granularity") }

// BenchmarkAblationAlpha sweeps the decoupled group fraction on MapReduce
// beyond the paper's three values (design choice 2).
func BenchmarkAblationAlpha(b *testing.B) { runFigure(b, "ablation-alpha") }

// BenchmarkAblationFCFS compares first-come-first-served against
// fixed-order stream consumption (design choice 3, the imbalance
// absorption mechanism).
func BenchmarkAblationFCFS(b *testing.B) { runFigure(b, "ablation-fcfs") }

// BenchmarkModelValidation compares Eq. 1 and Eq. 4 predictions against
// simulator measurements on the synthetic two-operation application.
func BenchmarkModelValidation(b *testing.B) { runFigure(b, "model") }
