package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// TestFaultsEcho: the CSV campaign echo appears exactly when a selected
// experiment consumes the -faults spec, renders canonically, and stays
// silent on specs ParseSpec refuses (the run itself will surface the
// error).
func TestFaultsEcho(t *testing.T) {
	def := faults.DefaultSpec().String()
	cases := []struct {
		names []string
		spec  string
		want  string
	}{
		{[]string{"resilience"}, "", def},
		{[]string{"recovery", "fig8"}, "bursts=16", "bursts=16"},
		{[]string{"fig8"}, "bursts=16", ""},
		{[]string{"resilience"}, "bursts=-1", ""},
		{[]string{"resilience"}, "bursts=1,bursts=2", ""},
		// The lossy sweep builds its verdict tables from its swept rates,
		// not from -faults, so no campaign echo: echoing an unconsumed
		// spec would record a campaign the rows were never measured under.
		{[]string{"lossy"}, "drop-rate=0.5", ""},
	}
	for _, c := range cases {
		if got := faultsEcho(c.names, c.spec); got != c.want {
			t.Errorf("faultsEcho(%v, %q) = %q, want %q", c.names, c.spec, got, c.want)
		}
	}
}

// TestListRegistrySync: the -list output (Names + Descriptions) covers
// every registered experiment and nothing else, including the sweeps
// added after the seed (recovery, resilience, lossy).
func TestListRegistrySync(t *testing.T) {
	for _, name := range experiments.Names() {
		if experiments.Descriptions[name] == "" {
			t.Errorf("experiment %q has no -list description", name)
		}
	}
	for name := range experiments.Descriptions {
		if experiments.Registry[name] == nil {
			t.Errorf("description for unregistered experiment %q", name)
		}
	}
	for _, want := range []string{"recovery", "resilience", "lossy"} {
		if experiments.Registry[want] == nil {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

// TestFibersDefaultEnv: the -fibers default folds REPRO_FIBERS, with
// fibers as the soaked fallback.
func TestFibersDefaultEnv(t *testing.T) {
	t.Setenv("REPRO_FIBERS", "")
	if !fibersDefault() {
		t.Error("unset REPRO_FIBERS: default should be fibers")
	}
	t.Setenv("REPRO_FIBERS", "0")
	if fibersDefault() {
		t.Error("REPRO_FIBERS=0: default should be goroutines")
	}
}

// TestCoresFlagSweep drives the same Options plumbing main builds from
// the -cores flag through a small sharded fig8 sweep, so the race job
// exercises the CLI-side path into parallel-mode worlds (sweep workers
// and engine shard workers active at once).
func TestCoresFlagSweep(t *testing.T) {
	opts := experiments.Options{
		MaxProcs: 32, Runs: 1, Workers: 2,
		Fibers: true, FibersExplicit: true, Cores: 2,
	}
	rows, err := experiments.Registry["fig8"](opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("row %s/%s procs=%d: non-positive seconds %v", r.Experiment, r.Series, r.Procs, r.Seconds)
		}
	}
	if !strings.HasPrefix(rows[0].Experiment, "fig8") {
		t.Errorf("unexpected experiment %q", rows[0].Experiment)
	}
}
