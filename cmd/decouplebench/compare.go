package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// loadReport reads a -json benchmark report.
func loadReport(path string) (map[string]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep map[string]benchEntry
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports prints per-experiment ns/op and events/sec deltas
// between two -json reports and returns the process exit code: nonzero
// when any experiment present in both reports slowed down (ns/op) by more
// than regressPct percent. Wall-clock comparisons across different
// machines are noisy; CI pairs this with a generous threshold and the
// machine-neutral events count as the tie-breaking signal.
func compareReports(oldPath, newPath string, regressPct float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	names := make([]string, 0, len(newRep))
	for name := range newRep {
		names = append(names, name)
	}
	sort.Strings(names)

	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\told ns/op\tnew ns/op\tdelta\told ev/s\tnew ev/s\tdelta")
	exit := 0
	var regressed []string
	for _, name := range names {
		n := newRep[name]
		o, ok := oldRep[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%d\tnew\t-\t%.0f\tnew\n", name, n.NsPerOp, n.EventsPerSec)
			continue
		}
		dNs := pct(float64(o.NsPerOp), float64(n.NsPerOp))
		dEv := pct(o.EventsPerSec, n.EventsPerSec)
		mark := ""
		if dNs > regressPct {
			mark = "  REGRESSION"
			regressed = append(regressed, name)
			exit = 1
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+.1f%%\t%.0f\t%.0f\t%+.1f%%%s\n",
			name, o.NsPerOp, n.NsPerOp, dNs, o.EventsPerSec, n.EventsPerSec, dEv, mark)
	}
	var removed []string
	for name := range oldRep {
		if _, ok := newRep[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(tw, "%s\t%d\t-\tremoved\t%.0f\t-\tremoved\n", name, oldRep[name].NsPerOp, oldRep[name].EventsPerSec)
	}
	tw.Flush()
	if exit != 0 {
		fmt.Fprintf(os.Stderr, "regression above %.0f%% in: %v\n", regressPct, regressed)
	}
	return exit
}
