package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// loadReport reads a -json benchmark report.
func loadReport(path string) (map[string]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep map[string]benchEntry
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareRow is one experiment's delta between two reports.
type compareRow struct {
	name       string
	oldNs      int64
	newNs      int64
	dNs        float64 // ns/op delta in percent (positive = slower)
	oldEv      float64
	newEv      float64
	dEv        float64
	regression bool
}

// compareReports prints per-experiment ns/op and events/sec deltas
// between two -json reports, worst regression first, and returns the
// process exit code: nonzero when any experiment present in both reports
// slowed down (ns/op) by more than regressPct percent, with the
// offending rows repeated on stderr. Wall-clock comparisons across
// different machines are noisy; CI pairs this with a generous threshold
// and the machine-neutral events count as the tie-breaking signal.
func compareReports(oldPath, newPath string, regressPct float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}

	var rows []compareRow
	var added []string
	for name, n := range newRep {
		o, ok := oldRep[name]
		if !ok {
			added = append(added, name)
			continue
		}
		r := compareRow{
			name:  name,
			oldNs: o.NsPerOp, newNs: n.NsPerOp,
			dNs:   pct(float64(o.NsPerOp), float64(n.NsPerOp)),
			oldEv: o.EventsPerSec, newEv: n.EventsPerSec,
			dEv: pct(o.EventsPerSec, n.EventsPerSec),
		}
		r.regression = r.dNs > regressPct
		rows = append(rows, r)
	}
	// Worst regression first (largest ns/op slowdown on top), so the rows
	// that matter lead the log; ties and equal deltas fall back to name
	// order for deterministic output.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].dNs != rows[j].dNs {
			return rows[i].dNs > rows[j].dNs
		}
		return rows[i].name < rows[j].name
	})
	sort.Strings(added)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\told ns/op\tnew ns/op\tdelta\told ev/s\tnew ev/s\tdelta")
	var regressed []compareRow
	for _, r := range rows {
		mark := ""
		if r.regression {
			mark = "  REGRESSION"
			regressed = append(regressed, r)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+.1f%%\t%.0f\t%.0f\t%+.1f%%%s\n",
			r.name, r.oldNs, r.newNs, r.dNs, r.oldEv, r.newEv, r.dEv, mark)
	}
	for _, name := range added {
		n := newRep[name]
		fmt.Fprintf(tw, "%s\t-\t%d\tnew\t-\t%.0f\tnew\n", name, n.NsPerOp, n.EventsPerSec)
	}
	var removed []string
	for name := range oldRep {
		if _, ok := newRep[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(tw, "%s\t%d\t-\tremoved\t%.0f\t-\tremoved\n", name, oldRep[name].NsPerOp, oldRep[name].EventsPerSec)
	}
	tw.Flush()
	if len(regressed) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "%d experiment(s) regressed above %.0f%% (worst first):\n", len(regressed), regressPct)
	for _, r := range regressed {
		fmt.Fprintf(os.Stderr, "  %s: %d -> %d ns/op (%+.1f%%), %.0f -> %.0f ev/s (%+.1f%%)\n",
			r.name, r.oldNs, r.newNs, r.dNs, r.oldEv, r.newEv, r.dEv)
	}
	return 1
}
