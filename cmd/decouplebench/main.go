// Command decouplebench regenerates the paper's evaluation figures
// (Figs. 5-8) and the ablation studies on the simulated runtime.
//
// Usage:
//
//	decouplebench -experiment fig5 -max-procs 8192 -runs 10
//	decouplebench -experiment all -format csv -out results.csv
//	decouplebench -experiment cosched -jobs 3 -cosched-policy fair-wc
//	decouplebench -compare -regress-pct 50 BENCH_PR2.json new.json
//	decouplebench -experiment fig8 -wake broadcast -json -out legacy.json
//
// Figure 2 and 3 are trace renderings; use cmd/traceviz for those.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// fibersDefault is the -fibers default: fiber rank bodies (the soaked
// representation), unless REPRO_FIBERS explicitly says otherwise. An
// explicit flag on the command line overrides the environment either way.
func fibersDefault() bool { return experiments.EnvFibers(true) }

// wakeDefault folds REPRO_WAKE into the -wake default.
func wakeDefault() string {
	if os.Getenv("REPRO_WAKE") == "broadcast" {
		return "broadcast"
	}
	return "direct"
}

// faultsEcho renders the canonical campaign spec as a CSV comment when a
// selected experiment consumed it, so result files record the campaign
// they were measured under (and a round trip through -faults reproduces
// them).
func faultsEcho(names []string, spec string) string {
	uses := false
	for _, n := range names {
		if n == "resilience" || n == "recovery" {
			uses = true
		}
	}
	if !uses {
		return ""
	}
	s, err := faults.ParseSpec(spec)
	if err != nil {
		return ""
	}
	return s.String()
}

// benchEntry is one experiment's performance record in the -json report.
type benchEntry struct {
	NsPerOp      int64   `json:"ns_per_op"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Rows         int     `json:"rows"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
		maxProcs   = flag.Int("max-procs", 1024, "largest process count in the weak-scaling sweeps (paper: 8192)")
		runs       = flag.Int("runs", 3, "repetitions per data point (paper: 10)")
		workers    = flag.Int("workers", 0, "concurrent sweep points (0: REPRO_WORKERS or one per CPU)")
		fibers     = flag.Bool("fibers", fibersDefault(), "run rank bodies as goroutine-free fibers (the soaked default; -fibers=false restores goroutine bodies)")
		cores      = flag.Int("cores", 0, "fig5-fig8, cosched: run each point's simulation in conservative parallel mode with this many workers (rows byte-identical for any value >= 1; 0: classic single-engine mode; other experiments reject it)")
		jobs       = flag.Int("jobs", 0, "cosched: concurrent jobs per point (0: sweep the built-in set)")
		coschedPol = flag.String("cosched-policy", "", "cosched: inter-job bank policy fcfs, fair, priority, fair-wc or priority-wc (empty: all)")
		faultSpec  = flag.String("faults", "", "fault-campaign spec: comma-separated key=value overrides of the default campaign, e.g. bursts=16,outage-len=1s or crashes=2,restart-cost=100ms; durations use Go syntax; keys: "+strings.Join(faults.SpecKeys(), ", ")+"; \"default\"/empty keeps the base campaign, \"none\" disables it (resilience/recovery: scaled base campaign; cosched: degrade the shared bank's stripes, empty means none)")
		list       = flag.Bool("list", false, "print the registered experiment names with one-line descriptions and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		out        = flag.String("out", "", "output file (default stdout)")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
		wake       = flag.String("wake", wakeDefault(), "request-completion wake strategy: direct (TrajectoryVersion 2) or broadcast (the legacy rank-wide parking, kept for paired A/B measurement)")
		jsonBench  = flag.Bool("json", false, "emit a machine-readable benchmark report (name -> ns/op, events/sec) instead of figure rows")
		compare    = flag.Bool("compare", false, "compare two -json reports (old.json new.json as positional args) and exit nonzero on regression")
		regressPct = flag.Float64("regress-pct", 25, "with -compare: fail when an experiment's ns/op regresses by more than this percentage")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			mark := " "
			if experiments.Shardable[name] {
				mark = "*" // runs under -cores (conservative parallel mode)
			}
			fmt.Printf("%s %-22s %s\n", mark, name, experiments.Descriptions[name])
		}
		fmt.Println("\n* supports -cores (conservative parallel mode)")
		return
	}

	switch *wake {
	case "direct":
		mpi.SetLegacyWake(false)
	case "broadcast":
		mpi.SetLegacyWake(true)
	default:
		fmt.Fprintf(os.Stderr, "unknown -wake %q; use direct or broadcast\n", *wake)
		os.Exit(2)
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: decouplebench -compare [-regress-pct N] old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *regressPct))
	}

	var names []string
	if *experiment == "all" {
		names = experiments.Names()
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			if experiments.Registry[name] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
					name, strings.Join(experiments.Names(), ", "))
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	opts := experiments.Options{
		MaxProcs: *maxProcs,
		Runs:     *runs,
		Workers:  *workers,
		// The -fibers default already folds in REPRO_FIBERS, so the
		// parsed flag is the fully-resolved choice (an explicit
		// -fibers=false wins over the environment).
		Fibers:         *fibers,
		FibersExplicit: true,
		Cores:          *cores,
		CoschedJobs:    *jobs,
		CoschedPolicy:  *coschedPol,
		FaultSpec:      *faultSpec,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	var rows []experiments.Row
	report := make(map[string]benchEntry, len(names))
	for _, name := range names {
		// Collect before each experiment so its ns/op does not absorb the
		// marking of the previous experiments' garbage (under the relaxed
		// sweep GC target a cycle can otherwise land mid-experiment and
		// bill whoever runs at the time): per-experiment entries stay
		// comparable across different suite compositions.
		runtime.GC()
		ev0 := sim.GlobalEvents()
		t0 := time.Now()
		r, err := experiments.Registry[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		events := sim.GlobalEvents() - ev0
		report[name] = benchEntry{
			NsPerOp:      elapsed.Nanoseconds(),
			Events:       events,
			EventsPerSec: float64(events) / elapsed.Seconds(),
			Rows:         len(r),
		}
		rows = append(rows, r...)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch {
	case *jsonBench:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err = enc.Encode(report)
	case *format == "table":
		err = experiments.FormatTable(w, rows)
	case *format == "csv":
		if echo := faultsEcho(names, *faultSpec); echo != "" {
			_, err = fmt.Fprintf(w, "# faults: %s\n", echo)
		}
		if err == nil {
			err = experiments.FormatCSV(w, rows)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
