// Command decouplebench regenerates the paper's evaluation figures
// (Figs. 5-8) and the ablation studies on the simulated runtime.
//
// Usage:
//
//	decouplebench -experiment fig5 -max-procs 8192 -runs 10
//	decouplebench -experiment all -format csv -out results.csv
//
// Figure 2 and 3 are trace renderings; use cmd/traceviz for those.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
		maxProcs   = flag.Int("max-procs", 1024, "largest process count in the weak-scaling sweeps (paper: 8192)")
		runs       = flag.Int("runs", 3, "repetitions per data point (paper: 10)")
		format     = flag.String("format", "table", "output format: table or csv")
		out        = flag.String("out", "", "output file (default stdout)")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	var names []string
	if *experiment == "all" {
		names = experiments.Names()
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			if experiments.Registry[name] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
					name, strings.Join(experiments.Names(), ", "))
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	opts := experiments.Options{MaxProcs: *maxProcs, Runs: *runs}
	if !*quiet {
		opts.Log = os.Stderr
	}

	var rows []experiments.Row
	for _, name := range names {
		r, err := experiments.Registry[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		rows = append(rows, r...)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "table":
		err = experiments.FormatTable(w, rows)
	case "csv":
		err = experiments.FormatCSV(w, rows)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
