// Command traceviz renders the paper's trace figures as ASCII timelines:
// Fig. 2 (iPIC3D particle communication, reference vs decoupled, on seven
// processes) and Fig. 3 (conceptual schedules of the conventional,
// non-blocking and decoupled models).
//
// Usage:
//
//	traceviz -fig 2
//	traceviz -fig 3 -width 120
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.Int("fig", 2, "figure to render: 2 or 3")
		width = flag.Int("width", 100, "timeline width in columns")
	)
	flag.Parse()

	var err error
	switch *fig {
	case 2:
		err = experiments.Fig2(os.Stdout, *width)
	case 3:
		err = experiments.Fig3(os.Stdout, *width)
	default:
		err = fmt.Errorf("unknown figure %d (supported: 2, 3)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
