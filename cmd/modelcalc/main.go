// Command modelcalc evaluates the paper's analytic performance model
// (Section II-D, Eqs. 1-4) for a two-operation application and searches
// for the optimal decoupled-group fraction and stream granularity.
//
// Usage:
//
//	modelcalc -w0 100ms -w1 50ms -sigma 5ms -alpha 0.0625 -d 1073741824 -s 65536 -o 200ns
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	var (
		w0    = flag.Duration("w0", 100*time.Millisecond, "per-process time of the retained operation Op0")
		w1    = flag.Duration("w1", 50*time.Millisecond, "per-process time of the decoupled operation Op1 (conventional)")
		sigma = flag.Duration("sigma", 5*time.Millisecond, "expected process-imbalance time")
		alpha = flag.Float64("alpha", 0.0625, "fraction of processes dedicated to Op1")
		d     = flag.Int64("d", 1<<30, "total streamed volume D in bytes")
		s     = flag.Int64("s", 64<<10, "stream element granularity S in bytes")
		o     = flag.Duration("o", 200*time.Nanosecond, "per-element overhead o")
		gain  = flag.Float64("gain", 1, "Op1 speedup on the dedicated group (T'W1 = TW1/gain)")
	)
	flag.Parse()

	p := model.Params{
		TW0:      sim.FromSeconds(w0.Seconds()),
		TW1:      sim.FromSeconds(w1.Seconds()),
		TSigma:   sim.FromSeconds(sigma.Seconds()),
		Alpha:    *alpha,
		D:        *d,
		S:        *s,
		Overhead: sim.FromSeconds(o.Seconds()),
	}
	if *gain > 1 {
		p.DecoupledTW1 = func(float64) sim.Time {
			return sim.Time(float64(p.TW1) / *gain)
		}
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Eq. 1 conventional Tc\t%v\n", model.Conventional(p))
	fmt.Fprintf(tw, "Eq. 2 ideal decoupled Td\t%v\n", model.DecoupledIdeal(p))
	fmt.Fprintf(tw, "Eq. 3 pipelined Td\t%v\n", model.DecoupledPipelined(p))
	fmt.Fprintf(tw, "Eq. 4 with overhead Td\t%v\n", model.Decoupled(p))
	fmt.Fprintf(tw, "speedup Tc/Td\t%.3f\n", model.Speedup(p))
	fmt.Fprintf(tw, "memory bound (streaming)\t%d bytes\n", model.MemoryBound(p, false))
	fmt.Fprintf(tw, "memory bound (buffered)\t%d bytes\n", model.MemoryBound(p, true))

	alphas := []float64{0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5}
	bestA, tA := model.OptimalAlpha(p, alphas)
	fmt.Fprintf(tw, "optimal alpha over %v\t%g (Td %v)\n", alphas, bestA, tA)

	grains := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	bestS, tS := model.OptimalGranularity(p, grains)
	fmt.Fprintf(tw, "optimal S over 1KiB..16MiB\t%d bytes (Td %v)\n", bestS, tS)
	tw.Flush()
}
